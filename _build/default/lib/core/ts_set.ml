(* Theorem 10 / Algorithm 2: a lock-free strongly-linearizable set from
   test&set (plus a readable fetch&increment, itself built from test&set
   by Theorem 9, and read/write registers).

   Put(x) allocates a fresh slot with fetch&increment and writes x there;
   Take scans the active region, claiming items with test&set.  The set's
   logical state is { Items[i] | 1 <= i <= Max-1, TS[i] = 0 }: an item is
   present once written and until somebody wins its test&set.  Puts
   linearize at their write, successful takes at their winning test&set,
   and empty takes at their last read of Max.  Take returns EMPTY only
   when two consecutive scans observe the same region bound and the same
   number of taken slots — otherwise some other operation completed in
   between, which is what makes the loop lock-free rather than
   wait-free.

   FINDING (DESIGN.md §6): the strong-linearizability checker refutes the
   EMPTY case of this algorithm — the "last read of Max" linearization
   point of an empty take is selected retroactively, and an adversary
   holding a pending put can contradict any early commitment.  The
   non-EMPTY fragment verifies exhaustively on bounded workloads.  We
   keep the algorithm exactly as published (modulo restoring the
   [taken_new] increment its listing omits). *)

module Make (R : Runtime_intf.S) (F : Object_intf.FETCH_INC) : Object_intf.SET = struct
  module P = Prim.Make (R)

  type t = {
    items : int option P.Register.t Inf_array.t;
    ts : P.Test_and_set.t Inf_array.t;
    max : F.t;
  }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "set." in
    {
      items = Inf_array.create (fun i -> P.Register.make ~name:(Printf.sprintf "%sitem%d" prefix i) None);
      ts = Inf_array.create (fun i -> P.Test_and_set.make ~name:(Printf.sprintf "%sts%d" prefix i) ());
      max = F.create ~name:(prefix ^ "max") ();
    }

  let put t x =
    let slot = F.fetch_inc t.max in
    P.Register.write (Inf_array.get t.items slot) (Some x)

  exception Took of int

  let take t =
    let rec round ~taken_old ~max_old =
      let taken_new = ref 0 in
      let max_new = F.read t.max - 1 in
      match
        for c = 1 to max_new do
          match P.Register.read (Inf_array.get t.items c) with
          | None -> ()
          | Some x ->
              if P.Test_and_set.test_and_set (Inf_array.get t.ts c) = 0 then raise (Took x)
              else incr taken_new
        done
      with
      | () ->
          if !taken_new = taken_old && max_new = max_old then None
          else round ~taken_old:!taken_new ~max_old:max_new
      | exception Took x -> Some x
    in
    round ~taken_old:0 ~max_old:0
end
