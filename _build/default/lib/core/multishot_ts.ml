(* Theorem 6: a wait-free strongly-linearizable readable, multi-shot
   test&set from (atomic) readable test&set and max register.

   An epoch counter [curr] (a max register) selects the current one-shot
   test&set in an infinite array [ts]: test&set and read act on
   ts[curr]; a reset re-reads [curr] into c, reads ts[c], and only if it
   is already set advances the epoch with writeMax(c+1).  (We start
   epochs at 0 where the paper starts at 1 — an index shift with no
   semantic content.)

   Composition (the paper's Corollaries):
   - with the atomic max register and Theorem 5's readable test&set:
     Theorem 6 itself / Corollary 7's wait-free version via Theorem 1's
     fetch&add max register;
   - with a lock-free max register: Corollary 8's lock-free version.
   Strong linearizability composes (Attiya–Enea, Theorem 10 of [9]), so
   any strongly-linearizable instantiations of the two parameters yield a
   strongly-linearizable multi-shot test&set. *)

module Make (M : Object_intf.MAX_REGISTER) (T : Object_intf.READABLE_TS) :
  Object_intf.MULTISHOT_TS = struct
  type t = { curr : M.t; ts : T.t Inf_array.t }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "msts." in
    {
      curr = M.create ~name:(prefix ^ "curr") ();
      ts = Inf_array.create (fun i -> T.create ~name:(Printf.sprintf "%sts%d" prefix i) ());
    }

  let test_and_set t = T.test_and_set (Inf_array.get t.ts (M.read_max t.curr))
  let read t = T.read (Inf_array.get t.ts (M.read_max t.curr))

  let reset t =
    let c = M.read_max t.curr in
    if T.read (Inf_array.get t.ts c) = 1 then M.write_max t.curr (c + 1)
end
