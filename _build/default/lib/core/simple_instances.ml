(* Simple-type instances (§3.3).

   Each instance plugs a commute/overwrite structure into Algorithm 1.
   Operation and response types deliberately reuse the corresponding
   [Spec] modules so that checker workloads need no translation.

   The overwrite relations (recall [overwrites o2 o1] means: running [o1]
   immediately before [o2] does not change the state left by [o2]):
   - any operation overwrites a pure read (reads do not change state);
   - WriteMax(v1) overwrites WriteMax(v2) iff v1 >= v2;
   - inserts of the same element overwrite each other;
   - increments/adds/ticks do NOT overwrite each other — they commute. *)

module Counter_type = struct
  type op = Spec.Counter.op
  type resp = Spec.Counter.resp
  type state = int

  let init = 0

  let apply s : op -> state * resp = function
    | Spec.Counter.Read -> (s, Spec.Counter.Value s)
    | Spec.Counter.Add d -> (s + d, Spec.Counter.Ack)

  let overwrites (o2 : op) (o1 : op) =
    match (o2, o1) with
    | _, Spec.Counter.Read -> true  (* reads change nothing *)
    | Spec.Counter.Read, Spec.Counter.Add _ -> false
    | Spec.Counter.Add _, Spec.Counter.Add _ -> false  (* they commute *)
end

module Monotonic_counter_type = struct
  type op = Spec.Monotonic_counter.op
  type resp = Spec.Monotonic_counter.resp
  type state = int

  let init = 0

  let apply s : op -> state * resp = function
    | Spec.Monotonic_counter.Read -> (s, Spec.Monotonic_counter.Value s)
    | Spec.Monotonic_counter.Inc -> (s + 1, Spec.Monotonic_counter.Ack)

  let overwrites (o2 : op) (o1 : op) =
    match (o2, o1) with
    | _, Spec.Monotonic_counter.Read -> true
    | Spec.Monotonic_counter.Read, Spec.Monotonic_counter.Inc -> false
    | Spec.Monotonic_counter.Inc, Spec.Monotonic_counter.Inc -> false
end

module Max_register_type = struct
  type op = Spec.Max_register.op
  type resp = Spec.Max_register.resp
  type state = int

  let init = 0

  let apply s : op -> state * resp = function
    | Spec.Max_register.ReadMax -> (s, Spec.Max_register.Value s)
    | Spec.Max_register.WriteMax v -> (max s v, Spec.Max_register.Ack)

  let overwrites (o2 : op) (o1 : op) =
    match (o2, o1) with
    | _, Spec.Max_register.ReadMax -> true
    | Spec.Max_register.ReadMax, Spec.Max_register.WriteMax _ -> false
    | Spec.Max_register.WriteMax v2, Spec.Max_register.WriteMax v1 -> v2 >= v1
end

module Logical_clock_type = struct
  type op = Spec.Logical_clock.op
  type resp = Spec.Logical_clock.resp
  type state = int

  let init = 0

  let apply s : op -> state * resp = function
    | Spec.Logical_clock.Read -> (s, Spec.Logical_clock.Time s)
    | Spec.Logical_clock.Tick -> (s + 1, Spec.Logical_clock.Ack)

  let overwrites (o2 : op) (o1 : op) =
    match (o2, o1) with
    | _, Spec.Logical_clock.Read -> true
    | Spec.Logical_clock.Read, Spec.Logical_clock.Tick -> false
    | Spec.Logical_clock.Tick, Spec.Logical_clock.Tick -> false
end

(* An add-only ("union") set: Insert and a Contains query.  Inserts of
   the same element overwrite each other; of different elements they
   commute. *)
module Union_set_type = struct
  type op = Insert of int | Contains of int
  type resp = Ack | Yes | No
  type state = int list  (* sorted, distinct *)

  let init = []

  let apply s : op -> state * resp = function
    | Insert x -> ((if List.mem x s then s else List.sort compare (x :: s)), Ack)
    | Contains x -> (s, if List.mem x s then Yes else No)

  let overwrites (o2 : op) (o1 : op) =
    match (o2, o1) with
    | _, Contains _ -> true
    | Contains _, Insert _ -> false
    | Insert x2, Insert x1 -> x2 = x1

  let pp_op fmt = function
    | Insert x -> Format.fprintf fmt "Insert %d" x
    | Contains x -> Format.fprintf fmt "Contains %d" x

  let pp_resp fmt = function
    | Ack -> Format.fprintf fmt "Ack"
    | Yes -> Format.fprintf fmt "Yes"
    | No -> Format.fprintf fmt "No"

  let equal_resp (a : resp) (b : resp) = a = b
end

(* The union set also gets a Spec-style module so the checkers can verify
   the construction against it. *)
module Union_set_spec = struct
  type state = int list
  type op = Union_set_type.op
  type resp = Union_set_type.resp

  let name = "union-set"
  let init = []
  let apply s o = [ Union_set_type.apply s o ]
  let equal_resp = Union_set_type.equal_resp
  let pp_op = Union_set_type.pp_op
  let pp_resp = Union_set_type.pp_resp
end
