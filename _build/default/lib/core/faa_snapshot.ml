(* Theorem 2: a wait-free strongly-linearizable n-component single-writer
   atomic snapshot from fetch&add.

   As in the max register (Theorem 1), one wide register interleaves the
   per-process components: process i's component is stored in binary in
   absolute bits i, n+i, 2n+i, ...  An update(v) by process i computes the
   bits that differ between v and its previous value prev, and applies a
   single fetch&add of posAdj - negAdj, where posAdj sets the bits going
   0->1 and negAdj clears the bits going 1->0.  A scan is fetch&add(R, 0)
   plus local decoding.  Every operation is one fetch&add — its
   linearization point — hence strong linearizability. *)

module Make (R : Runtime_intf.S) : sig
  include Object_intf.SNAPSHOT

  val width_bits : t -> int
  (** Bits currently used by the backing wide register (bench E5). *)
end = struct
  module P = Prim.Make (R)

  type t = { reg : P.Faa_wide.t; prev_val : int array }

  let create ?name () =
    { reg = P.Faa_wide.make ?name Bignum.zero; prev_val = Array.make (R.n_procs ()) 0 }

  let update t v =
    if v < 0 then invalid_arg "Faa_snapshot.update: negative";
    let i = R.self () and n = R.n_procs () in
    let prev = t.prev_val.(i) in
    if v = prev then ignore (P.Faa_wide.fetch_and_add t.reg Bignum.Signed.zero)
    else begin
      let vb = Bignum.of_int v and pb = Bignum.of_int prev in
      let changed = Bignum.logxor vb pb in
      let pos = Bignum.logand changed vb in  (* bits 0 -> 1 *)
      let neg = Bignum.logand changed pb in  (* bits 1 -> 0 *)
      let delta =
        Bignum.Signed.add
          (Bignum.Signed.of_nat (Bignum.deposit_stride pos ~offset:i ~stride:n))
          (Bignum.Signed.of_nat ~neg:true (Bignum.deposit_stride neg ~offset:i ~stride:n))
      in
      ignore (P.Faa_wide.fetch_and_add t.reg delta);
      t.prev_val.(i) <- v
    end

  let width_bits t = Bignum.num_bits (P.Faa_wide.read t.reg)

  let scan t =
    let n = R.n_procs () in
    let packed = P.Faa_wide.read t.reg in
    Array.init n (fun i ->
        Bignum.to_int_exn (Bignum.extract_stride packed ~offset:i ~stride:n))
end
