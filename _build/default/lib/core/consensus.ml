(* Consensus protocols — the paper's yardstick (§2) made executable.

   The consensus number of a primitive is the largest n for which it
   solves n-process consensus (with registers).  These three protocols
   exhibit the hierarchy the paper's results live on:

   - [Two_from_ts]: 2-process consensus from one test&set and two
     registers — test&set has consensus number 2 (its whole point);
   - [Two_from_queue]: 2-process consensus from a two-element pre-filled
     queue — queues also sit at level 2, which is why Theorem 17 is about
     what queues can NOT give you (strong linearizability), not about
     raw consensus power;
   - [Any_from_cas]: n-process consensus from compare&swap — the
     universal primitive the known strongly-linearizable constructions
     rely on.

   Each returns the decided value; agreement and validity are exercised
   by the tests under adversarial schedules and crashes. *)

module Two_from_ts (R : Runtime_intf.S) = struct
  module P = Prim.Make (R)

  type t = { proposals : int option P.Register.t array; ts : P.Test_and_set.t }

  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "cons." in
    {
      proposals = Array.init 2 (fun i -> P.Register.make ~name:(Printf.sprintf "%sprop%d" prefix i) None);
      ts = P.Test_and_set.make ~name:(prefix ^ "ts") ~procs:2 ();
    }

  (* Only processes 0 and 1 may propose. *)
  let propose t v =
    let me = R.self () in
    if me > 1 then invalid_arg "Two_from_ts: 2-process protocol";
    P.Register.write t.proposals.(me) (Some v);
    if P.Test_and_set.test_and_set t.ts = 0 then v
    else
      match P.Register.read t.proposals.(1 - me) with
      | Some w -> w
      | None ->
          (* The winner wrote its proposal before playing test&set. *)
          assert false
end

module Two_from_queue (R : Runtime_intf.S) = struct
  module P = Prim.Make (R)

  type token = Winner | Loser

  type t = { proposals : int option P.Register.t array; queue : token list R.obj }

  (* The queue is pre-filled in the initial configuration: the first
     dequeuer drains the winner token (Herlihy's classic argument for
     queues having consensus number >= 2). *)
  let create ?name () =
    let prefix = match name with Some s -> s ^ "." | None -> "consq." in
    {
      proposals =
        Array.init 2 (fun i -> P.Register.make ~name:(Printf.sprintf "%sprop%d" prefix i) None);
      queue = R.obj ~name:(prefix ^ "q") [ Winner; Loser ];
    }

  let propose t v =
    let me = R.self () in
    if me > 1 then invalid_arg "Two_from_queue: 2-process protocol";
    P.Register.write t.proposals.(me) (Some v);
    let tok =
      R.access ~info:"deq" t.queue (function [] -> ([], Loser) | x :: rest -> (rest, x))
    in
    match tok with
    | Winner -> v
    | Loser -> (
        match P.Register.read t.proposals.(1 - me) with Some w -> w | None -> assert false)
end

module Any_from_cas (R : Runtime_intf.S) = struct
  module P = Prim.Make (R)

  type t = int option P.Cas.t

  let create ?name () : t = P.Cas.make ?name None

  let propose (t : t) v =
    ignore (P.Cas.compare_and_swap t ~expect:None (Some v));
    match P.Cas.read t with Some w -> w | None -> assert false
end
