(* Parallel runtime on OCaml 5 domains, for wall-clock benchmarks.

   Every base object carries its own mutex; an access locks, applies the
   transition, unlocks — one linearizable step, as the model requires.
   This is not meant to be a lock-free production runtime: it exists so
   the constructions can be timed under real parallelism (experiment E6).

   [run ~n f] spawns [n] domains executing [f 0 .. f (n-1)] and returns
   their results.  Process identity is carried in domain-local storage so
   that [self ()] works from any depth of the algorithm. *)

let proc_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)
let size_key : int ref = ref 1

let make ~n () : (module Runtime_intf.S) =
  size_key := n;
  (module struct
    type 'a obj = { mutable state : 'a; lock : Mutex.t }

    let obj ?name init =
      ignore name;
      { state = init; lock = Mutex.create () }

    let access ?info o f =
      ignore info;
      Mutex.lock o.lock;
      let r =
        match f o.state with
        | s, r ->
            o.state <- s;
            Mutex.unlock o.lock;
            r
        | exception e ->
            Mutex.unlock o.lock;
            raise e
      in
      r

    let read ?info o = access ?info o (fun s -> (s, s))
    let self () = Domain.DLS.get proc_key
    let n_procs () = !size_key
  end)

let run ~n (f : int -> 'a) : 'a array =
  let domains =
    Array.init n (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set proc_key i;
            f i))
  in
  Array.map Domain.join domains
