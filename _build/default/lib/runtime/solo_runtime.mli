(** Degenerate runtime for solo executions: accesses apply immediately,
    with no scheduling or suspension.

    Models a process running alone.  Lemma 12's Algorithm B uses it for
    the local solo simulation of decision sequences (the implementation
    re-creates its base objects with collected states as initial values);
    tests and benchmarks use it for sequential semantics. *)

val make : self:int -> n:int -> unit -> (module Runtime_intf.S)
(** [make ~self ~n ()] is a fresh runtime whose [self ()] is [self] and
    [n_procs ()] is [n].  Every call returns an independent instance with
    its own objects. *)
