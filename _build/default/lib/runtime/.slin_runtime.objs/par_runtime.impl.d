lib/runtime/par_runtime.ml: Array Domain Mutex Runtime_intf
