lib/runtime/trace.ml: Format List
