lib/runtime/par_runtime.mli: Runtime_intf
