lib/runtime/solo_runtime.ml: Runtime_intf
