lib/runtime/sim.ml: Array Effect List Printf Random Runtime_intf Trace
