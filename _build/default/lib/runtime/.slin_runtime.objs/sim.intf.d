lib/runtime/sim.mli: Runtime_intf Trace
