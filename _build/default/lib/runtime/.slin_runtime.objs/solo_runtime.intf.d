lib/runtime/solo_runtime.mli: Runtime_intf
