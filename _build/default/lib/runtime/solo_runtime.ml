(* Degenerate runtime for solo executions.

   Accesses apply immediately — no scheduling, no suspension.  This models
   a process running alone, which is exactly what Lemma 12's Algorithm B
   needs: after collecting a consistent snapshot of the base objects, a
   process locally simulates a solo extension of the execution.  The
   collected states are injected by the implementation itself, which
   re-creates its base objects with the collected states as initial values
   (type-safely, since the implementation knows its own state types). *)

let make ~self:self_id ~n () : (module Runtime_intf.S) =
  (module struct
    type 'a obj = { mutable state : 'a }

    let obj ?name init =
      ignore name;
      { state = init }

    let access ?info o f =
      ignore info;
      let s, r = f o.state in
      o.state <- s;
      r

    let read ?info o = access ?info o (fun s -> (s, s))
    let self () = self_id
    let n_procs () = n
  end)
