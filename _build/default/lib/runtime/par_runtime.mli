(** Parallel runtime on OCaml 5 domains, for wall-clock benchmarks
    (experiment E6).

    Every base object carries its own mutex; an access locks, applies the
    transition, unlocks — one linearizable step, as the model requires.
    Not a lock-free production runtime: it exists to time the
    constructions under real parallelism. *)

val make : n:int -> unit -> (module Runtime_intf.S)
(** [make ~n ()] is a runtime for [n] domains.  [self ()] reads the
    domain-local process id installed by {!run}; objects may be created
    before or during the run. *)

val run : n:int -> (int -> 'a) -> 'a array
(** [run ~n f] spawns [n] domains computing [f 0 .. f (n-1)] (each with
    its process id installed for [self ()]) and joins them all. *)
