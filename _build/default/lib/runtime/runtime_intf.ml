(** The shared-memory model of Attiya–Castañeda–Enea §2.

    An implementation is a distributed algorithm in which processes
    communicate only by applying {e atomic} operations to shared {e base
    objects}.  This signature is what an algorithm sees; it is implemented
    by three runtimes:

    - {!Sim} — the deterministic simulator.  Every {!access} is one atomic
      step; an explicit scheduler interleaves processes, so executions are
      replayable and enumerable (this is what makes strong-linearizability
      checking possible).
    - {!Solo_runtime} — a degenerate single-process runtime in which
      accesses apply immediately.  Used for the local solo simulations of
      Lemma 12's Algorithm B.
    - {!Par_runtime} — a [Domain]-based runtime in which every base object
      is protected by its own mutex, used for wall-clock benchmarks.

    Algorithms are written as functors over this signature and therefore
    run unchanged on all three. *)

module type S = sig
  type 'a obj
  (** A shared base object holding state of type ['a]. *)

  val obj : ?name:string -> 'a -> 'a obj
  (** [obj ?name init] creates a base object in state [init].  Creation is
      part of the initial configuration, not a step of any process. *)

  val access : ?info:string -> 'a obj -> ('a -> 'a * 'r) -> 'r
  (** [access o f] atomically replaces the state [s] of [o] by [fst (f s)]
      and returns [snd (f s)].  This is {e one step} of the calling
      process: in the simulator the process is suspended until the
      scheduler grants the step, and [f] is applied at the moment the step
      is granted.  [f] must be pure.  [info] labels the step in traces. *)

  val read : ?info:string -> 'a obj -> 'a
  (** [read o] is [access o (fun s -> (s, s))]: the read operation of a
      {e readable} base object (paper §5, Lemma 16).  One atomic step. *)

  val self : unit -> int
  (** Index of the calling process ([0 .. n_procs () - 1]). *)

  val n_procs : unit -> int
  (** Number of processes in the system. *)
end
